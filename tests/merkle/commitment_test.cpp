#include "merkle/commitment.hpp"

#include <gtest/gtest.h>

#include "crypto/rng.hpp"

namespace zendoo::merkle {
namespace {

using crypto::hash_str;
using crypto::Rng;

SidechainId sc(int i) {
  return crypto::Hasher(Domain::kGeneric)
      .write_u64(static_cast<std::uint64_t>(i))
      .finalize();
}

Digest tx(int i) {
  return crypto::Hasher(Domain::kTxId)
      .write_u64(static_cast<std::uint64_t>(i))
      .finalize();
}

TEST(Commitment, EmptyBlockRoot) {
  ScTxCommitmentTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.root(),
            ScTxCommitmentTree::final_root(MerkleTree::empty_root(), 0));
}

TEST(Commitment, MembershipRoundTrip) {
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(10));
  t.add_forward_transfer(sc(1), tx(11));
  t.add_btr(sc(1), tx(12));
  t.set_wcert(sc(1), tx(13));
  t.add_forward_transfer(sc(2), tx(20));

  Digest root = t.root();
  auto p1 = t.prove_membership(sc(1));
  EXPECT_TRUE(ScTxCommitmentTree::verify_membership(root, sc(1), p1));
  auto p2 = t.prove_membership(sc(2));
  EXPECT_TRUE(ScTxCommitmentTree::verify_membership(root, sc(2), p2));
}

TEST(Commitment, MembershipProofBindsToSidechainId) {
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(10));
  t.add_forward_transfer(sc(2), tx(20));
  Digest root = t.root();
  auto p1 = t.prove_membership(sc(1));
  // Same proof presented for a different sidechain id must fail.
  EXPECT_FALSE(ScTxCommitmentTree::verify_membership(root, sc(2), p1));
  EXPECT_FALSE(ScTxCommitmentTree::verify_membership(root, sc(3), p1));
}

TEST(Commitment, MembershipDetectsTamperedTxs) {
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(10));
  Digest root = t.root();
  auto p = t.prove_membership(sc(1));
  p.txs_hash.bytes[0] ^= 1;
  EXPECT_FALSE(ScTxCommitmentTree::verify_membership(root, sc(1), p));
}

TEST(Commitment, TxsHashReconstructibleFromLists) {
  // SC nodes recompute FTHash/BTRHash from synced tx lists and compare.
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(1));
  t.add_forward_transfer(sc(1), tx(2));
  t.add_btr(sc(1), tx(3));
  auto p = t.prove_membership(sc(1));

  Digest ft_root = merkle_root({tx(1), tx(2)});
  Digest btr_root = merkle_root({tx(3)});
  Digest reconstructed =
      crypto::hash_pair(Domain::kMerkleNode, ft_root, btr_root);
  EXPECT_EQ(p.txs_hash, reconstructed);
}

TEST(Commitment, OnlyOneWcertPerSidechain) {
  ScTxCommitmentTree t;
  t.set_wcert(sc(1), tx(1));
  EXPECT_THROW(t.set_wcert(sc(1), tx(2)), std::logic_error);
}

TEST(Commitment, ProveMembershipAbsentThrows) {
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(1));
  EXPECT_THROW((void)t.prove_membership(sc(9)), std::invalid_argument);
}

TEST(Commitment, ProveAbsencePresentThrows) {
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(1));
  EXPECT_THROW((void)t.prove_absence(sc(1)), std::invalid_argument);
}

TEST(Commitment, AbsenceInEmptyBlock) {
  ScTxCommitmentTree t;
  auto p = t.prove_absence(sc(5));
  EXPECT_TRUE(ScTxCommitmentTree::verify_absence(t.root(), sc(5), p));
}

TEST(Commitment, AbsenceBetweenNeighbors) {
  // Insert several sidechains; prove absence for one that sorts between.
  ScTxCommitmentTree t;
  std::vector<SidechainId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sc(i));
    t.add_forward_transfer(ids.back(), tx(i));
  }
  std::sort(ids.begin(), ids.end());
  // Target: an id strictly between ids[3] and ids[4].
  SidechainId target = ids[3];
  target.bytes[31] ^= 1;  // perturb the low byte
  if (!(ids[3] < target && target < ids[4])) {
    target = ids[3];
    target.bytes[31] += 1;
  }
  ASSERT_FALSE(t.data().contains(target));
  auto p = t.prove_absence(target);
  EXPECT_TRUE(p.left && p.right);
  EXPECT_TRUE(ScTxCommitmentTree::verify_absence(t.root(), target, p));
}

TEST(Commitment, AbsenceAtEdges) {
  ScTxCommitmentTree t;
  for (int i = 0; i < 5; ++i) t.add_btr(sc(i), tx(i));
  // Find ids below the smallest and above the largest present id.
  std::vector<SidechainId> present;
  for (const auto& [id, _] : t.data()) present.push_back(id);

  SidechainId below{};  // all zero bytes sorts first
  ASSERT_LT(below, present.front());
  auto p_lo = t.prove_absence(below);
  EXPECT_FALSE(p_lo.left.has_value());
  EXPECT_TRUE(p_lo.right.has_value());
  EXPECT_TRUE(ScTxCommitmentTree::verify_absence(t.root(), below, p_lo));

  SidechainId above;
  above.bytes.fill(0xFF);
  ASSERT_LT(present.back(), above);
  auto p_hi = t.prove_absence(above);
  EXPECT_TRUE(p_hi.left.has_value());
  EXPECT_FALSE(p_hi.right.has_value());
  EXPECT_TRUE(ScTxCommitmentTree::verify_absence(t.root(), above, p_hi));
}

TEST(Commitment, AbsenceProofRejectsPresentId) {
  ScTxCommitmentTree t;
  for (int i = 0; i < 5; ++i) t.add_btr(sc(i), tx(i));
  std::vector<SidechainId> present;
  for (const auto& [id, _] : t.data()) present.push_back(id);

  // Craft a fake absence proof for an id that IS present by using its
  // neighbours: witnesses won't bracket it correctly.
  SidechainId target = present[2];
  AbsenceProof fake;
  fake.leaf_count = 5;
  auto real = t.prove_absence([&] {
    SidechainId x = target;
    x.bytes[31] ^= 1;
    return x;
  }());
  fake.left = real.left;
  fake.right = real.right;
  EXPECT_FALSE(ScTxCommitmentTree::verify_absence(t.root(), target, fake) &&
               fake.left && fake.left->sc_id < target &&
               (!fake.right || target < fake.right->sc_id));
}

TEST(Commitment, AbsenceProofRejectsNonAdjacentWitnesses) {
  ScTxCommitmentTree t;
  for (int i = 0; i < 8; ++i) t.add_btr(sc(i), tx(i));
  std::vector<SidechainId> present;
  for (const auto& [id, _] : t.data()) present.push_back(id);

  // Find a target strictly between two adjacent present ids; witnesses
  // that bracket it but are not adjacent must be rejected (a leaf equal to
  // the target could hide between them).
  std::optional<SidechainId> found;
  std::size_t gap_index = 0;
  for (std::size_t i = 1; i + 1 < present.size() && !found; ++i) {
    SidechainId candidate = present[i];
    candidate.bytes[31] ^= 1;
    if (present[i] < candidate && candidate < present[i + 1]) {
      found = candidate;
      gap_index = i;
    }
  }
  ASSERT_TRUE(found.has_value()) << "no usable gap between present ids";
  SidechainId target = *found;
  (void)gap_index;
  auto honest = t.prove_absence(target);
  ASSERT_TRUE(honest.left && honest.right);
  // Build a dishonest variant with a farther-left witness.
  MerkleTree top = [&] {
    std::vector<Digest> leaves;
    for (const auto& [id, data] : t.data()) leaves.push_back(data.sc_hash(id));
    return MerkleTree(leaves);
  }();
  AbsenceProof bad = honest;
  auto it = t.data().begin();  // index 0: id < target for sure
  bad.left = NeighborWitness{it->first, it->second.txs_hash(),
                             it->second.wcert_leaf(), top.prove(0)};
  EXPECT_FALSE(ScTxCommitmentTree::verify_absence(t.root(), target, bad));
}

TEST(Commitment, AbsenceRejectsWrongCount) {
  ScTxCommitmentTree t;
  for (int i = 0; i < 4; ++i) t.add_btr(sc(i), tx(i));
  SidechainId below{};
  auto p = t.prove_absence(below);
  p.leaf_count = 3;
  EXPECT_FALSE(ScTxCommitmentTree::verify_absence(t.root(), below, p));
}

TEST(Commitment, RootChangesWithAnyAction) {
  ScTxCommitmentTree t;
  t.add_forward_transfer(sc(1), tx(1));
  Digest r1 = t.root();
  t.add_btr(sc(1), tx(2));
  Digest r2 = t.root();
  EXPECT_NE(r1, r2);
  t.set_wcert(sc(1), tx(3));
  Digest r3 = t.root();
  EXPECT_NE(r2, r3);
  t.add_forward_transfer(sc(9), tx(4));
  EXPECT_NE(r3, t.root());
}

class CommitmentScale : public ::testing::TestWithParam<int> {};

TEST_P(CommitmentScale, ManySidechainsAllProvable) {
  int n = GetParam();
  ScTxCommitmentTree t;
  Rng rng(static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    t.add_forward_transfer(sc(i), rng.next_digest());
    if (i % 3 == 0) t.set_wcert(sc(i), rng.next_digest());
  }
  Digest root = t.root();
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(ScTxCommitmentTree::verify_membership(
        root, sc(i), t.prove_membership(sc(i))));
  }
  // And an id not present is provably absent.
  auto p = t.prove_absence(sc(n + 1000));
  EXPECT_TRUE(ScTxCommitmentTree::verify_absence(root, sc(n + 1000), p));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommitmentScale,
                         ::testing::Values(1, 2, 3, 7, 16, 33));

}  // namespace
}  // namespace zendoo::merkle
