// MetricsProbe contract tests: attaching a probe is invisible to the
// event stream (golden-digest safe), sampling is deterministic (the
// exported JSON is byte-identical across reruns of the same seed), and
// the time-series answers the questions it exists for (bounded orphan
// pool under a flood).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mainchain/params.hpp"
#include "net/scenario.hpp"
#include "obs/json.hpp"
#include "sim/metrics_probe.hpp"

namespace zendoo {
namespace {

using net::NodeCluster;
using net::ScenarioEvent;
using net::ScenarioRunner;
using sim::MetricsProbe;

/// A small partitioned mining race, driven either by the probe (when
/// `probe` is non-null) or by the net directly — byte-identical event
/// streams is the contract under test.
void drive_race(NodeCluster& cluster, MetricsProbe* probe) {
  auto run_until = [&](net::SimTime t) {
    if (probe != nullptr) {
      probe->run_until(t);
    } else {
      cluster.net.run_until(t);
    }
  };
  cluster.net.partition({{0, 1}, {2, 3}});
  cluster[0].mine();
  run_until(10);
  cluster[2].mine();
  cluster[2].mine();
  run_until(25);
  cluster.net.heal();
  for (net::NetNode* node : cluster.ptrs()) node->announce_tip();
  if (probe != nullptr) {
    probe->run_until_idle();
  } else {
    cluster.net.run_until_idle();
  }
}

TEST(MetricsProbe, InvisibleToTraceDigestAndStats) {
  NodeCluster plain(7, 4);
  plain.net.set_trace_mode(net::TraceMode::kDigest);
  drive_race(plain, nullptr);

  NodeCluster probed(7, 4);
  probed.net.set_trace_mode(net::TraceMode::kDigest);
  MetricsProbe probe(probed.net, probed.ptrs(), /*cadence=*/5);
  drive_race(probed, &probe);

  EXPECT_EQ(probed.net.trace_digest(), plain.net.trace_digest());
  EXPECT_EQ(probed.net.stats().delivered, plain.net.stats().delivered);
  EXPECT_EQ(probed.net.stats().events_processed,
            plain.net.stats().events_processed);
  EXPECT_FALSE(probe.samples().empty());
}

TEST(MetricsProbe, JsonByteIdenticalAcrossReruns) {
  auto run_once = [] {
    NodeCluster cluster(21, 4);
    MetricsProbe probe(cluster.net, cluster.ptrs(), /*cadence=*/4);
    drive_race(cluster, &probe);
    return probe.to_json("rerun");
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(MetricsProbe, SamplesAreOrderedAndCountersMonotone) {
  NodeCluster cluster(3, 4);
  MetricsProbe probe(cluster.net, cluster.ptrs(), /*cadence=*/5);
  drive_race(cluster, &probe);

  const auto& samples = probe.samples();
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].time, samples[i].time);
  }
  for (const char* name :
       {"sim.events_processed", "net.msgs_sent", "mc.blocks_connected"}) {
    const auto series = probe.series(name);
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_LE(series[i - 1].second, series[i].second) << name;
    }
  }
  // The race connected blocks on every node and the probe saw it happen.
  EXPECT_GT(probe.last("mc.blocks_connected"), 0u);
  EXPECT_GT(probe.last("net.msgs_sent{type=block}"), 0u);
  EXPECT_EQ(probe.last("sim.events_processed"),
            cluster.net.stats().events_processed.value());
}

TEST(MetricsProbe, OrphanPoolStaysBoundedUnderFlood) {
  mainchain::ChainParams params;
  NodeCluster cluster(11, 2, {}, params);
  net::OrphanSpammer spammer(cluster.net, params);
  MetricsProbe probe(cluster.net, cluster.ptrs(), /*cadence=*/8);
  // Three flood waves with sampling in between: the time-series must
  // show per-node occupancy peaking below the configured pool cap.
  for (int wave = 0; wave < 3; ++wave) {
    spammer.spam(/*victim=*/0, 100);
    probe.run_until(cluster.net.now() + 40);
  }
  probe.run_until_idle();
  const std::uint64_t peak = probe.max_over_time("mc.orphan_pool.node_max");
  EXPECT_GT(peak, 0u);
  EXPECT_LE(peak, params.max_orphan_blocks);
}

TEST(MetricsProbe, WriteJsonEmitsParsableSchemaWithMandatoryFamilies) {
  NodeCluster cluster(5, 4);
  MetricsProbe probe(cluster.net, cluster.ptrs(), /*cadence=*/5);
  drive_race(cluster, &probe);

  ASSERT_EQ(setenv("ZENDOO_BENCH_DIR", testing::TempDir().c_str(), 1), 0);
  const std::string path = probe.write_json("probe_test");
  unsetenv("ZENDOO_BENCH_DIR");
  ASSERT_FALSE(path.empty());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::json::Value doc = obs::json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "zendoo-probe-v1");
  EXPECT_EQ(doc.at("name").as_string(), "probe_test");
  EXPECT_EQ(doc.at("cadence").as_u64(), 5u);
  EXPECT_EQ(doc.at("nodes").as_u64(), 4u);
  const obs::json::Value& samples = doc.at("samples");
  ASSERT_TRUE(samples.is_array());
  ASSERT_GT(samples.size(), 0u);
  const obs::json::Value& last = samples.at(samples.size() - 1);
  EXPECT_TRUE(last.at("time").is_number());
  for (const char* family :
       {"sim.events_processed", "net.msgs_sent", "net.blocks_received",
        "mc.blocks_connected", "mc.orphan_pool", "par.checks_executed"}) {
    EXPECT_NE(last.at("values").find(family), nullptr) << family;
  }
}

}  // namespace
}  // namespace zendoo
