#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_merge.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zendoo::obs {
namespace {

// ---- Counter / Gauge: raw-uint64 drop-in semantics -------------------------

TEST(Counter, BehavesLikeRawUint64) {
  Counter c;
  EXPECT_EQ(c, 0u);
  ++c;
  EXPECT_EQ(c, 1u);
  EXPECT_EQ(c++, 1u);  // postfix yields the old value
  EXPECT_EQ(c, 2u);
  c += 5;
  EXPECT_EQ(c.value(), 7u);
  c = 3;
  EXPECT_EQ(c, 3u);
  // Arithmetic through the implicit conversion, as call sites use it.
  const std::uint64_t delta = c - 1;
  EXPECT_EQ(delta, 2u);
  EXPECT_DOUBLE_EQ(static_cast<double>(c), 3.0);
}

TEST(Gauge, SetAndRead) {
  Gauge g;
  EXPECT_EQ(g, 0u);
  g.set(42);
  EXPECT_EQ(g.value(), 42u);
  g.set(7);  // gauges go down too
  EXPECT_EQ(g, 7u);
}

// ---- Histogram: log2 bucketing ---------------------------------------------

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(255), 8u);
  EXPECT_EQ(Histogram::bucket_of(256), 9u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, CountSumMaxAndBuckets) {
  Histogram h;
  for (std::uint64_t v : {0u, 1u, 3u, 3u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(0), 1u);  // the zero
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 3, 3
  EXPECT_EQ(h.bucket(7), 1u);  // 100 in [64,128)
}

TEST(AtomicHistogram, SingleThreadedMatchesPlain) {
  Histogram plain;
  AtomicHistogram atomic;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    plain.record(v * v);
    atomic.record(v * v);
  }
  EXPECT_EQ(atomic.count(), plain.count());
  EXPECT_EQ(atomic.sum(), plain.sum());
  EXPECT_EQ(atomic.max(), plain.max());
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(atomic.bucket(b), plain.bucket(b)) << "bucket " << b;
  }
}

// ---- Registry ---------------------------------------------------------------

TEST(Registry, OwnedMetricsStableAcrossRegistrations) {
  Registry reg;
  Counter* c = reg.counter("a.count");
  ++*c;
  // Re-registering the same name+kind returns the same object.
  EXPECT_EQ(reg.counter("a.count"), c);
  EXPECT_EQ(reg.value("a.count"), 1u);
  // A kind mismatch on an existing name is a bug, not a new metric.
  EXPECT_THROW(reg.gauge("a.count"), std::logic_error);
  EXPECT_THROW(reg.histogram("a.count"), std::logic_error);
}

TEST(Registry, CollectIsSortedAndFlattensHistograms) {
  Registry reg;
  reg.counter("z.last");
  Histogram* h = reg.histogram("m.depth");
  h->record(4);
  h->record(9);
  reg.gauge("a.first")->set(11);
  const std::vector<Sample> samples = reg.collect();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const Sample& x, const Sample& y) { return x.name < y.name; }));
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].value, 11u);
  EXPECT_EQ(samples[1].name, "m.depth.count");
  EXPECT_EQ(samples[1].value, 2u);
  EXPECT_EQ(samples[2].name, "m.depth.max");
  EXPECT_EQ(samples[2].value, 9u);
  EXPECT_EQ(samples[3].name, "m.depth.sum");
  EXPECT_EQ(samples[3].value, 13u);
  EXPECT_EQ(samples[4].name, "z.last");
}

TEST(Registry, WallClockExcludedFromDeterministicCollection) {
  Registry reg;
  reg.counter("a.stable");
  Histogram* wall = reg.histogram("a.latency_ns", Determinism::kWallClock);
  wall->record(123);
  std::vector<Sample> det = reg.collect();
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0].name, "a.stable");
  std::vector<Sample> all = reg.collect(/*include_wall_clock=*/true);
  EXPECT_EQ(all.size(), 4u);  // stable + latency {count,max,sum}
  EXPECT_EQ(reg.value("a.latency_ns.max"), 123u);
}

TEST(Registry, ExposedAndComputedMetrics) {
  Registry reg;
  Counter owned_elsewhere;
  reg.expose_counter("x.ext", &owned_elsewhere);
  std::uint64_t depth = 17;
  reg.expose_value("x.depth", [&depth] { return depth; });
  owned_elsewhere += 9;
  EXPECT_EQ(reg.value("x.ext"), 9u);
  EXPECT_EQ(reg.value("x.depth"), 17u);
  depth = 3;
  EXPECT_EQ(reg.value("x.depth"), 3u);  // computed at collection time
  EXPECT_EQ(reg.value("x.absent"), std::nullopt);
}

TEST(Registry, LabeledFamilyNames) {
  EXPECT_EQ(Registry::labeled("net.msgs_sent", "type", "block"),
            "net.msgs_sent{type=block}");
}

// ---- EventLog ---------------------------------------------------------------

TEST(EventLog, RingOverwritesOldestAndCountsDrops) {
  EventLog log(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    log.push(Event{i, Severity::kInfo, "t", "event", i, 0});
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 2u);  // oldest surviving
  EXPECT_EQ(events[2].time, 4u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(EventLog, MacroRespectsBuildTimeFloorAndFillsArgs) {
  EventLog log(8);
  // kTrace is below the default floor (1): compiled out entirely.
  ZENDOO_OBS_EVENT(log, kTrace, 1, "t", "invisible");
  EXPECT_EQ(log.total(), 0u);
  ZENDOO_OBS_EVENT(log, kWarn, 7, "t", "peer banned", std::uint64_t{3},
                   std::uint64_t{150});
  ASSERT_EQ(log.size(), 1u);
  const Event e = log.snapshot()[0];
  EXPECT_EQ(e.time, 7u);
  EXPECT_EQ(e.severity, Severity::kWarn);
  EXPECT_STREQ(e.message, "peer banned");
  EXPECT_EQ(e.a, 3u);
  EXPECT_EQ(e.b, 150u);
}

TEST(ScopedTimer, NullHistogramIsInertAndRecordsWhenSet) {
  { ScopedTimer inert(nullptr); }  // must not crash
  Histogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
}

// ---- JSON parser -------------------------------------------------------------

TEST(Json, ParsesObjectsArraysAndScalars) {
  const json::Value v = json::parse(
      R"({"name": "x\n", "n": 42, "neg": -1.5, "ok": true, )"
      R"("null": null, "arr": [1, 2, 3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "x\n");
  EXPECT_EQ(v.at("n").as_u64(), 42u);
  EXPECT_DOUBLE_EQ(v.at("neg").as_number(), -1.5);
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("null").is_null());
  ASSERT_TRUE(v.at("arr").is_array());
  EXPECT_EQ(v.at("arr").size(), 3u);
  EXPECT_EQ(v.at("arr").at(2).as_u64(), 3u);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW((void)v.at("absent"), std::runtime_error);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("nul"), std::runtime_error);
}

TEST(Json, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\rf";
  const json::Value v =
      json::parse("{\"k\": \"" + json::escape(nasty) + "\"}");
  EXPECT_EQ(v.at("k").as_string(), nasty);
}

}  // namespace
}  // namespace zendoo::obs

// ---- bench_merge: duplicate-name aggregation --------------------------------

namespace zendoo::bench {
namespace {

Record make(const std::string& name, long long iters, double real, double cpu,
            std::vector<std::pair<std::string, double>> counters = {}) {
  Record r;
  r.name = name;
  r.iterations = iters;
  r.real_time = real;
  r.cpu_time = cpu;
  r.time_unit = "ns";
  r.counters = std::move(counters);
  return r;
}

TEST(BenchMerge, DistinctNamesPassThroughInOrder) {
  const auto out = merge_records({make("b", 1, 10, 10), make("a", 1, 20, 20)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "b");  // first-appearance order, not sorted
  EXPECT_EQ(out[1].name, "a");
}

TEST(BenchMerge, DuplicatesMergeWithIterationWeightedMeans) {
  // Run 1: 100 iters at 10ns; run 2: 300 iters at 20ns.
  const auto out = merge_records({
      make("bm", 100, 10.0, 8.0, {{"events", 50.0}}),
      make("bm", 300, 20.0, 16.0, {{"events", 70.0}, {"extra", 4.0}}),
  });
  ASSERT_EQ(out.size(), 1u);
  const Record& r = out[0];
  EXPECT_EQ(r.iterations, 400);
  EXPECT_DOUBLE_EQ(r.real_time, (10.0 * 100 + 20.0 * 300) / 400);
  EXPECT_DOUBLE_EQ(r.cpu_time, (8.0 * 100 + 16.0 * 300) / 400);
  ASSERT_EQ(r.counters.size(), 2u);
  EXPECT_EQ(r.counters[0].first, "events");
  EXPECT_DOUBLE_EQ(r.counters[0].second, (50.0 * 100 + 70.0 * 300) / 400);
  // "extra" missing from run 1 contributes 0 for run 1's weight.
  EXPECT_EQ(r.counters[1].first, "extra");
  EXPECT_DOUBLE_EQ(r.counters[1].second, (0.0 * 100 + 4.0 * 300) / 400);
}

TEST(BenchMerge, MismatchedTimeUnitsThrow) {
  Record us = make("bm", 1, 1, 1);
  us.time_unit = "us";
  EXPECT_THROW(merge_records({make("bm", 1, 1, 1), us}), std::runtime_error);
}

}  // namespace
}  // namespace zendoo::bench
